package sim

import (
	"strings"
	"testing"

	"eccparity/internal/ecc"
)

// TestSchemeKeysCoverRegistry: every scheme the ecc registry serves is an
// evaluated configuration, plus the engine-only parity overlays.
func TestSchemeKeysCoverRegistry(t *testing.T) {
	keys := SchemeKeys()
	have := map[string]bool{}
	for _, k := range keys {
		have[k] = true
		if !KnownScheme(k) {
			t.Errorf("SchemeKeys lists %q but KnownScheme denies it", k)
		}
	}
	for _, name := range ecc.Names() {
		if !have[name] {
			t.Errorf("ecc registry scheme %q has no evaluated configuration", name)
		}
	}
	for _, k := range []string{"lotecc5+parity", "raim+parity"} {
		if !have[k] {
			t.Errorf("engine-only overlay %q missing", k)
		}
	}
	if KnownScheme("nope") {
		t.Error("KnownScheme accepted an unknown key")
	}
}

// TestOnDieSchemesRaiseEPI: the in-array check bits cost dynamic energy —
// an on-die configuration's memConfig chips must burn more per activate
// than the bare chips of a rank-only scheme of the same geometry.
func TestOnDieSchemesRaiseEPI(t *testing.T) {
	for _, key := range []string{"ondie-sec", "ondie+chipkill", "ondie+raim18"} {
		sc := SchemeByKey(key)
		if sc.OnDieOverhead <= 0 {
			t.Errorf("%s: OnDieOverhead = %v, want > 0", key, sc.OnDieOverhead)
		}
		mc := memConfig(sc, QuadEq)
		bare := buildMemConfig(SchemeConfig{Base: sc.Base, Traffic: sc.Traffic}, QuadEq)
		if !(mc.Chips[0].ActivateEnergy(mc.Timing) > bare.Chips[0].ActivateEnergy(bare.Timing)) {
			t.Errorf("%s: on-die overhead did not raise activate energy", key)
		}
	}
	if sc := SchemeByKey("chipkill36"); sc.OnDieOverhead != 0 {
		t.Errorf("rank-only scheme carries on-die overhead %v", sc.OnDieOverhead)
	}
}

// TestSchemeVariant: defaults resolve to the shared entry; non-default
// options intern one distinct configuration per (key, options) pair.
func TestSchemeVariant(t *testing.T) {
	def, err := SchemeVariant("ondie+chipkill", "")
	if err != nil {
		t.Fatal(err)
	}
	if def.Key != "ondie+chipkill" || def.Base != SchemeByKey("ondie+chipkill").Base {
		t.Error("default variant must be the shared registry entry")
	}
	opts := `{"passthrough":true}`
	v1, err := SchemeVariant("ondie+chipkill", opts)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := SchemeVariant("ondie+chipkill", opts)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Base != v2.Base {
		t.Error("repeated variant resolution must share the interned instance")
	}
	if v1.Key == def.Key || !strings.Contains(v1.Key, "ondie+chipkill") {
		t.Errorf("variant key %q must be distinct from the default and carry the scheme", v1.Key)
	}
	if v1.OnDieOverhead != def.OnDieOverhead {
		t.Error("passthrough still stores check bits: energy overhead must match the default")
	}
	od, ok := v1.Base.(*ecc.OnDie)
	if !ok || !od.Passthrough() {
		t.Fatalf("variant base = %T, want passthrough *ecc.OnDie", v1.Base)
	}
	if _, err := SchemeVariant("nope", ""); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := SchemeVariant("chipkill36", opts); err == nil {
		t.Error("options on an optionless scheme accepted")
	}
	if _, err := SchemeVariant("ondie-sec", `{"bogus":1}`); err == nil {
		t.Error("invalid options accepted")
	}
}

// TestNewSchemesRun: each newly registered configuration drives a short
// full-system run end to end.
func TestNewSchemesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	for _, key := range []string{"doublechipkill", "lotecc5rs", "raim18", "ondie-sec", "ondie+chipkill", "ondie+raim18"} {
		r := Run(fastCfg(key, QuadEq, "lbm"))
		if r.Instructions == 0 || r.EPI <= 0 {
			t.Errorf("%s: degenerate run: %+v", key, r)
		}
	}
}
