package sim

// This file is the unified, validated entry point to the engine. The two
// historical entry points — Run(cfg) for one cell and NewEvaluation(...)
// for a (scheme × workload) grid — both survive as thin shims, but new code
// (internal/sim/report, and through it every CLI and the daemon) goes
// through New: build a *Sim once from functional options, get typed
// validation errors instead of panics, then Run or Evaluate it with a
// context that can cancel the engine mid-run.

import (
	"context"
	"fmt"

	"eccparity/internal/workload"
)

// ConfigError is the typed validation error of New: one field, one reason.
// Callers can errors.As for it to distinguish a bad configuration from a
// runtime failure.
type ConfigError struct {
	Field  string
	Reason string
}

// Error names the offending field and why it was rejected.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s: %s", e.Field, e.Reason)
}

// Sim is a validated simulation configuration. It is immutable after New
// and safe to share: Run and Evaluate copy the config per call, so one Sim
// can drive concurrent runs.
type Sim struct {
	cfg  Config
	opts []Option
}

// New builds a Sim from the standard evaluation budget (baseConfig: eight
// cores, 8MB/16-way LLC, 400k measured cycles, 60k warmup accesses, seed 1)
// with the options applied, validating the result. It returns a
// *ConfigError — never panics — on an invalid combination, including
// options that themselves failed to apply (WithCell with an unknown key).
func New(opts ...Option) (*Sim, error) {
	cfg := baseConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, opts: opts}, nil
}

// Config returns a copy of the validated configuration.
func (s *Sim) Config() Config { return s.cfg }

// Run executes the configured single cell, which must have been selected
// with WithCell (or WithSources for trace replay). Canceling ctx interrupts
// the engine at its checkpoint interval (ctxCheckEvery iterations) and
// returns ctx's error; a run that completes is byte-identical to the
// uninterruptible Run(cfg).
func (s *Sim) Run(ctx context.Context) (Result, error) {
	if s.cfg.Scheme.Base == nil {
		return Result{}, &ConfigError{Field: "Scheme", Reason: "no cell selected (use WithCell)"}
	}
	if s.cfg.Workload.Name == "" && s.cfg.Sources == nil {
		return Result{}, &ConfigError{Field: "Workload", Reason: "no workload selected (use WithCell or WithSources)"}
	}
	return RunContext(ctx, s.cfg)
}

// Evaluate runs the (scheme × workload) matrix for a system class with the
// Sim's options; nil slices mean "all". Cells fan out over the worker pool
// (WithWorkers) with worker-count-invariant results; canceling ctx
// interrupts the in-flight cells at the engine's checkpoint interval. A
// cell selected with WithCell is ignored here — the grid enumerates its own
// cells.
func (s *Sim) Evaluate(ctx context.Context, class SystemClass, schemeKeys, workloads []string) (*Evaluation, error) {
	return EvaluationContext(ctx, class, schemeKeys, workloads, s.opts...)
}

// WithCell selects the single (scheme, class, workload) cell that Run
// executes. Unknown scheme keys or workload names surface as a ConfigError
// from New instead of a panic.
func WithCell(schemeKey string, class SystemClass, workloadName string) Option {
	return func(c *Config) {
		sc, ok := Schemes()[schemeKey]
		if !ok {
			c.optErr = &ConfigError{Field: "Scheme", Reason: fmt.Sprintf("unknown scheme key %q", schemeKey)}
			return
		}
		spec, ok := workload.ByName(workloadName)
		if !ok {
			c.optErr = &ConfigError{Field: "Workload", Reason: fmt.Sprintf("unknown workload %q", workloadName)}
			return
		}
		c.Scheme = sc
		c.Class = class
		c.Workload = spec
	}
}

// WithSources drives the cores from recorded access streams (trace replay)
// instead of live generators; len(sources) must equal the core count.
func WithSources(sources []workload.Source) Option {
	return func(c *Config) { c.Sources = sources }
}

// validate rejects configurations the engine would otherwise panic on (or
// silently mis-simulate), with one typed error per field.
func (c *Config) validate() error {
	if c.optErr != nil {
		return c.optErr
	}
	switch {
	case c.MeasureCycles <= 0:
		return &ConfigError{Field: "MeasureCycles", Reason: fmt.Sprintf("must be > 0 (got %g)", c.MeasureCycles)}
	case c.WarmupAccesses < 0:
		return &ConfigError{Field: "WarmupAccesses", Reason: fmt.Sprintf("must be >= 0 (got %d)", c.WarmupAccesses)}
	case c.Cores < 1:
		return &ConfigError{Field: "Cores", Reason: fmt.Sprintf("must be >= 1 (got %d)", c.Cores)}
	case c.LLCBytes < 1:
		return &ConfigError{Field: "LLCBytes", Reason: fmt.Sprintf("must be >= 1 (got %d)", c.LLCBytes)}
	case c.LLCWays < 1:
		return &ConfigError{Field: "LLCWays", Reason: fmt.Sprintf("must be >= 1 (got %d)", c.LLCWays)}
	case c.MarkedBankFraction < 0 || c.MarkedBankFraction > 1:
		return &ConfigError{Field: "MarkedBankFraction", Reason: fmt.Sprintf("must be in [0, 1] (got %g)", c.MarkedBankFraction)}
	case c.ScrubLineInterval < 0:
		return &ConfigError{Field: "ScrubLineInterval", Reason: fmt.Sprintf("must be >= 0 (got %g)", c.ScrubLineInterval)}
	case c.PowerDownThreshold < 0:
		return &ConfigError{Field: "PowerDownThreshold", Reason: fmt.Sprintf("must be >= 0 (got %g)", c.PowerDownThreshold)}
	case c.SpeedBinFactor < 0:
		return &ConfigError{Field: "SpeedBinFactor", Reason: fmt.Sprintf("must be >= 0 (got %g)", c.SpeedBinFactor)}
	}
	if c.Sources != nil && len(c.Sources) != c.Cores {
		return &ConfigError{Field: "Sources", Reason: fmt.Sprintf("%d sources for %d cores", len(c.Sources), c.Cores)}
	}
	return nil
}
