package sim

import (
	"context"
	"reflect"
	"testing"
)

// arenaTestConfigs is a deliberately heterogeneous grid: scheme shapes
// (inline, ECC-line, parity with marked banks), both system classes
// (different channel counts, so controller/marked shapes change between
// points), different workloads, and every config knob that alters the
// prepared engine (open-page, scrubbing, speed bin, power-down override,
// ECC-caching ablation). Interleaving these through one Arena exercises
// every reuse-vs-rebuild branch of prepare.
func arenaTestConfigs() []Config {
	small := func(scheme string, class SystemClass, wl string) Config {
		cfg := DefaultConfig(scheme, class, wl)
		cfg.WarmupAccesses = 2000
		cfg.MeasureCycles = 20000
		return cfg
	}
	withMarks := small("lotecc5+parity", QuadEq, "mcf")
	withMarks.MarkedBankFraction = 0.1
	openPage := small("chipkill18", DualEq, "lbm")
	openPage.OpenPage = true
	scrub := small("multiecc", QuadEq, "libquantum")
	scrub.ScrubLineInterval = 500
	binned := small("raim+parity", DualEq, "mcf")
	binned.SpeedBinFactor = 1.16
	sleepy := small("chipkill36", QuadEq, "omnetpp")
	sleepy.PowerDownThreshold = 50
	ablated := small("lotecc9", DualEq, "soplex")
	ablated.DisableECCCaching = true
	return []Config{
		small("chipkill18", QuadEq, "mcf"),
		withMarks,
		openPage,
		scrub,
		binned,
		sleepy,
		ablated,
		small("chipkill18", QuadEq, "mcf"), // repeat of the first point
	}
}

// TestArenaReuseDeterminism interleaves a heterogeneous grid through one
// Arena, twice, and asserts every result is identical to a fresh-arena run
// of the same configuration. This is the reuse contract: a run through a
// used Arena is indistinguishable from a run through a new one.
func TestArenaReuseDeterminism(t *testing.T) {
	ctx := context.Background()
	cfgs := arenaTestConfigs()
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := NewArena().RunContext(ctx, cfg)
		if err != nil {
			t.Fatalf("fresh run %d: %v", i, err)
		}
		want[i] = r
	}
	a := NewArena()
	for round := 0; round < 2; round++ {
		for i, cfg := range cfgs {
			got, err := a.RunContext(ctx, cfg)
			if err != nil {
				t.Fatalf("round %d reused run %d: %v", round, i, err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Errorf("round %d config %d (%s/%s/%s): reused-arena result diverges from fresh-arena result\n got: %+v\nwant: %+v",
					round, i, cfg.Scheme.Key, cfg.Class, cfg.Workload.Name, got, want[i])
			}
		}
	}
}

// TestArenaSpeedBinDoesNotContaminatePrototype pins the copy-on-mutate
// contract of the shared controller-config cache: a speed-binned run must
// not rebin the shared Chips prototype in place, which would silently skew
// every later run of the same (scheme, class).
func TestArenaSpeedBinDoesNotContaminatePrototype(t *testing.T) {
	ctx := context.Background()
	plain := DefaultConfig("chipkill18", QuadEq, "mcf")
	plain.WarmupAccesses = 2000
	plain.MeasureCycles = 20000
	want, err := NewArena().RunContext(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	binned := plain
	binned.SpeedBinFactor = 1.16
	a := NewArena()
	if _, err := a.RunContext(ctx, binned); err != nil {
		t.Fatal(err)
	}
	got, err := a.RunContext(ctx, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plain run after speed-binned run diverges: the shared Chips prototype was mutated\n got: %+v\nwant: %+v", got, want)
	}
}
