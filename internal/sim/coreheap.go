package sim

// coreHeap selects the core with the earliest local clock each engine
// iteration. It is a binary min-heap of core ids ordered by (clock, id) —
// the id tie-break reproduces exactly the first-strict-minimum choice of
// the linear scan it replaces, which the determinism guarantee depends
// on. Only the root's key ever changes (the selected core is the one that
// advances), so a single sift-down maintains the heap in O(log cores)
// against the scan's O(cores) per iteration.
type coreHeap struct {
	ids   []int32
	times []float64 // indexed by core id
}

// reset rebuilds the heap over times, reusing the id array when its
// capacity suffices (the arena calls this once per run).
func (h *coreHeap) reset(times []float64) {
	if cap(h.ids) < len(times) {
		h.ids = make([]int32, len(times))
	}
	h.ids = h.ids[:len(times)]
	h.times = times
	for i := range h.ids {
		h.ids[i] = int32(i)
	}
	for i := len(h.ids)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// min returns the id and clock of the earliest core.
func (h *coreHeap) min() (int, float64) {
	id := h.ids[0]
	return int(id), h.times[id]
}

// fixMin records the root core's new clock and restores heap order.
func (h *coreHeap) fixMin(t float64) {
	h.times[h.ids[0]] = t
	h.siftDown(0)
}

func (h *coreHeap) less(a, b int32) bool {
	ta, tb := h.times[a], h.times[b]
	return ta < tb || (ta == tb && a < b)
}

func (h *coreHeap) siftDown(i int) {
	n := len(h.ids)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.ids[r], h.ids[l]) {
			m = r
		}
		if !h.less(h.ids[m], h.ids[i]) {
			return
		}
		h.ids[i], h.ids[m] = h.ids[m], h.ids[i]
		i = m
	}
}
