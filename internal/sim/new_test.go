package sim

import (
	"context"
	"errors"
	"testing"
)

// TestNewValidCell checks the happy path: a Sim built from a known cell
// runs to completion and produces the same Result as the legacy Run(cfg)
// entry point with an identical configuration.
func TestNewValidCell(t *testing.T) {
	s, err := New(
		WithCell("chipkill18", QuadEq, "mcf"),
		WithCycles(20000),
		WithWarmup(2000),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	cfg := DefaultConfig("chipkill18", QuadEq, "mcf")
	cfg.MeasureCycles = 20000
	cfg.WarmupAccesses = 2000
	want := Run(cfg)
	if got != want {
		t.Fatalf("Sim.Run diverged from legacy Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestNewRejectsUnknownCell checks that a failed option surfaces from New
// as a typed *ConfigError instead of the panic the legacy path raised.
func TestNewRejectsUnknownCell(t *testing.T) {
	cases := []struct {
		name  string
		opts  []Option
		field string
	}{
		{"unknown scheme", []Option{WithCell("nope", QuadEq, "mcf")}, "Scheme"},
		{"unknown workload", []Option{WithCell("chipkill18", QuadEq, "nope")}, "Workload"},
		{"zero cycles", []Option{WithCell("chipkill18", QuadEq, "mcf"), WithCycles(0)}, "MeasureCycles"},
		{"negative warmup", []Option{WithCell("chipkill18", QuadEq, "mcf"), WithWarmup(-1)}, "WarmupAccesses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts...)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("New error = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

// TestNewRunWithoutCell checks that Run on a Sim with no cell selected
// fails with a ConfigError rather than dereferencing a nil scheme.
func TestNewRunWithoutCell(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("Run without a cell succeeded, want ConfigError")
	}
}

// TestRunContextCancel checks the tentpole property at the single-run
// level: a canceled context interrupts the engine promptly and the run
// reports ctx.Err() rather than a fabricated Result.
func TestRunContextCancel(t *testing.T) {
	cfg := DefaultConfig("chipkill18", QuadEq, "mcf")
	cfg.MeasureCycles = 1e9 // far longer than the test would tolerate
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx = %v, want context.Canceled", err)
	}
}

// TestEvaluationContextCancel checks that a grid evaluation propagates
// cancellation instead of returning a partially filled Evaluation.
func TestEvaluationContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluationContext(ctx, QuadEq, []string{"chipkill18"}, []string{"mcf"},
		WithCycles(1e9))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluationContext on canceled ctx = %v, want context.Canceled", err)
	}
}
