// Package cluster is the membership and placement layer of a multi-node
// eccsimd fleet. Membership is static — the operator passes the full
// replica list to every node (-peers) — and placement is a consistent-hash
// ring over the replicas' ids: every content address (the SHA-256 config
// hash that already identifies a result) maps to exactly one owner replica,
// and every replica computes the same mapping from the same member list
// with no coordination, no gossip, and no shared state beyond the flag.
//
// The ring hashes each node onto many virtual points (VNodes per replica)
// so ownership spreads evenly even with three nodes, and so removing one
// replica redistributes only that replica's arcs: keys owned by survivors
// keep their owner, which is what lets a cluster ride out a dead node with
// nothing but recomputation of the dead node's in-flight work (results are
// deterministic and content-addressed, so re-execution is always safe).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVNodes is the virtual-node count used when a Ring is built with
// vnodes <= 0. 64 points per replica keeps the ownership imbalance of a
// 3-node ring within a few percent while the ring stays tiny (192 points).
const DefaultVNodes = 64

// Node is one replica of the fleet: a stable id (the -node-id flag) and the
// base URL peers reach it at (e.g. "http://10.0.0.7:8344").
type Node struct {
	ID   string
	Addr string
}

// point is one virtual node on the ring: a position in hash space and the
// index of the replica that owns the arc ending at it.
type point struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring. All methods are safe for
// concurrent use.
type Ring struct {
	nodes  []Node
	vnodes int
	points []point
}

// New builds a ring over the given replicas. Node ids must be non-empty and
// unique; addresses must be non-empty. vnodes <= 0 selects DefaultVNodes.
// The ring depends only on (sorted ids, vnodes), so every replica handed
// the same member list builds byte-for-byte identical placement.
func New(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := make([]Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seen := map[string]bool{}
	for _, n := range sorted {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node id must be non-empty")
		}
		// ":" and "/" are reserved: node ids prefix wire job/sweep ids as
		// "<id>:job-3", which must survive a URL path segment round trip.
		if strings.ContainsAny(n.ID, " ,=:/") {
			return nil, fmt.Errorf("cluster: node id %q must not contain spaces, commas, '=', ':' or '/'", n.ID)
		}
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: node %s has no address", n.ID)
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	r := &Ring{nodes: sorted, vnodes: vnodes, points: make([]point, 0, len(sorted)*vnodes)}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("vnode:%s#%d", n.ID, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between vnode labels is astronomically
		// unlikely; break it by node index so placement stays deterministic.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 maps a label into ring space: the first 8 bytes of its SHA-256,
// big-endian. SHA-256 keeps placement identical across processes and
// architectures (no seeded or map-order-dependent hashing).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the replica that owns key: the node of the first ring point
// at or clockwise-after hash(key), wrapping at the top of hash space.
func (r *Ring) Owner(key string) Node {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the membership, sorted by id. The slice is a copy.
func (r *Ring) Nodes() []Node {
	out := make([]Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Lookup returns the member with the given id.
func (r *Ring) Lookup(id string) (Node, bool) {
	for _, n := range r.nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// VNodes returns the virtual-node count per replica.
func (r *Ring) VNodes() int { return r.vnodes }

// OwnedFraction returns the fraction of hash space the given replica owns —
// the /metrics ring-state gauge. Every arc ends at a ring point and is owned
// by that point's node; the arc before the first point wraps from the last.
func (r *Ring) OwnedFraction(id string) float64 {
	var owned uint64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		if r.nodes[p.node].ID == id {
			owned += arc
		}
		prev = p.hash
	}
	return float64(owned) / float64(1<<63) / 2
}

// ParsePeers parses the -peers flag format: a comma-separated list of
// id=baseURL pairs, e.g. "a=http://h1:8344,b=http://h2:8344". Order does not
// matter (the ring sorts by id).
func ParsePeers(s string) ([]Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	var nodes []Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: peer %q must be id=baseURL", part)
		}
		if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
			return nil, fmt.Errorf("cluster: peer %s address %q must be an http(s) base URL", id, addr)
		}
		nodes = append(nodes, Node{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	return nodes, nil
}
