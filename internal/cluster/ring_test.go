package cluster

import (
	"fmt"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "a", Addr: "http://h1:8344"},
		{ID: "b", Addr: "http://h2:8344"},
		{ID: "c", Addr: "http://h3:8344"},
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"empty", nil},
		{"blank id", []Node{{ID: "", Addr: "http://x"}}},
		{"dup id", []Node{{ID: "a", Addr: "http://x"}, {ID: "a", Addr: "http://y"}}},
		{"no addr", []Node{{ID: "a"}}},
		{"id with =", []Node{{ID: "a=b", Addr: "http://x"}}},
	}
	for _, c := range cases {
		if _, err := New(c.nodes, 0); err == nil {
			t.Errorf("New(%s): expected error", c.name)
		}
	}
}

// Placement must be a pure function of (member ids, vnodes): two rings built
// from the same list — in any order — agree on every key, across processes.
func TestDeterministicPlacement(t *testing.T) {
	r1, err := New(threeNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []Node{threeNodes()[2], threeNodes()[0], threeNodes()[1]}
	r2, err := New(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a, b := r1.Owner(key).ID, r2.Owner(key).ID; a != b {
			t.Fatalf("key %q: ring1 owner %s != ring2 owner %s", key, a, b)
		}
	}
}

// With DefaultVNodes the three-way split should be roughly even: no node
// owns less than 15% or more than 55% of 10k uniform keys.
func TestDistribution(t *testing.T) {
	r, err := New(threeNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("result-%d", i)).ID]++
	}
	for id, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys, outside [15%%, 55%%]", id, 100*frac)
		}
	}
	var total float64
	for _, id := range []string{"a", "b", "c"} {
		f := r.OwnedFraction(id)
		if f <= 0 || f >= 1 {
			t.Errorf("OwnedFraction(%s) = %v, want in (0,1)", id, f)
		}
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("owned fractions sum to %v, want 1", total)
	}
}

// The consistent-hashing property: removing one node moves only the keys it
// owned. Every key owned by a survivor keeps its owner.
func TestRemovalStability(t *testing.T) {
	r3, err := New(threeNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(threeNodes()[:2], 0) // node c removed
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r3.Owner(key).ID
		after := r2.Owner(key).ID
		if before == "c" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q owned by survivor %s moved to %s when c left", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("expected node c to own some keys before removal")
	}
}

func TestLookup(t *testing.T) {
	r, err := New(threeNodes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := r.Lookup("b"); !ok || n.Addr != "http://h2:8344" {
		t.Fatalf("Lookup(b) = %+v, %v", n, ok)
	}
	if _, ok := r.Lookup("zzz"); ok {
		t.Fatal("Lookup(zzz) should miss")
	}
	if r.VNodes() != 8 {
		t.Fatalf("VNodes() = %d, want 8", r.VNodes())
	}
	if got := len(r.Nodes()); got != 3 {
		t.Fatalf("Nodes() len = %d, want 3", got)
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("a=http://h1:8344, b=http://h2:8344/,c=https://h3")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("parsed %d nodes, want 3", len(nodes))
	}
	if nodes[1].ID != "b" || nodes[1].Addr != "http://h2:8344" {
		t.Fatalf("node b = %+v (trailing slash should be trimmed)", nodes[1])
	}
	for _, bad := range []string{"", "a", "a=", "=http://x", "a=ftp://x"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): expected error", bad)
		}
	}
}
