// Package doccheck is the repository's documentation linter. It walks the
// exported surface of a Go package directory — the package clause,
// functions, types, methods, and const/var declaration groups — and
// reports every exported identifier that lacks a doc comment. The test in
// this package pins the enforced directories (pkg/api, internal/sim/report
// and the simulation-engine entry points), and CI runs it as a named step,
// so an undocumented export there fails the build.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Undocumented parses the package in dir (test files excluded) and returns
// one finding per undocumented exported identifier, sorted. A declaration
// group's doc comment covers its members, matching how godoc renders
// grouped consts and vars.
func Undocumented(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, p := range pkgs {
		d := doc.New(p, dir, 0)
		if strings.TrimSpace(d.Doc) == "" {
			out = append(out, fmt.Sprintf("package %s: missing package comment", d.Name))
		}
		out = append(out, valueFindings(d.Consts, d.Name)...)
		out = append(out, valueFindings(d.Vars, d.Name)...)
		for _, f := range d.Funcs {
			out = append(out, funcFindings(f, d.Name)...)
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
				out = append(out, fmt.Sprintf("%s.%s: missing doc comment", d.Name, t.Name))
			}
			out = append(out, valueFindings(t.Consts, d.Name)...)
			out = append(out, valueFindings(t.Vars, d.Name)...)
			for _, f := range t.Funcs {
				out = append(out, funcFindings(f, d.Name)...)
			}
			for _, m := range t.Methods {
				if !ast.IsExported(t.Name) {
					continue
				}
				out = append(out, funcFindings(m, d.Name+"."+t.Name)...)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// valueFindings flags const/var groups that declare at least one exported
// name but carry no group doc comment.
func valueFindings(values []*doc.Value, scope string) []string {
	var out []string
	for _, v := range values {
		if strings.TrimSpace(v.Doc) != "" {
			continue
		}
		for _, name := range v.Names {
			if ast.IsExported(name) {
				out = append(out, fmt.Sprintf("%s.%s: missing doc comment on declaration group", scope, name))
				break
			}
		}
	}
	return out
}

// funcFindings flags an exported function or method without a doc comment.
func funcFindings(f *doc.Func, scope string) []string {
	if !ast.IsExported(f.Name) || strings.TrimSpace(f.Doc) != "" {
		return nil
	}
	return []string{fmt.Sprintf("%s.%s: missing doc comment", scope, f.Name)}
}
