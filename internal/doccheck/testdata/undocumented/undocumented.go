package undocumented

const ExportedConst = 1

// documentedFine is unexported and needs no doc.
const documentedFine = 2

type Exported struct{}

func (Exported) Method() {}

// DocumentedMethod has a doc comment and must not be flagged.
func (Exported) DocumentedMethod() {}

func ExportedFunc() {}
