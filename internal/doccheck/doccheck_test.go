package doccheck

import "testing"

// enforcedDirs are the packages whose exported surface must be fully
// documented: the public API, the experiment registry/batch layer, and the
// simulation package that exports the engine arena entry points.
var enforcedDirs = []string{
	"../../pkg/api",
	"../../internal/sim/report",
	"../../internal/sim",
}

// TestExportedIdentifiersDocumented fails on any exported identifier in
// the enforced packages that lacks a doc comment. CI runs this as the
// docs-check step.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range enforcedDirs {
		findings, err := Undocumented(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", dir, f)
		}
	}
}

// TestCheckerDetectsMissingDocs guards the linter itself against silently
// going blind: the testdata package omits docs on purpose and must yield
// exactly the expected findings.
func TestCheckerDetectsMissingDocs(t *testing.T) {
	findings, err := Undocumented("testdata/undocumented")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"package undocumented: missing package comment":                        true,
		"undocumented.Exported: missing doc comment":                           true,
		"undocumented.ExportedFunc: missing doc comment":                       true,
		"undocumented.Exported.Method: missing doc comment":                    true,
		"undocumented.ExportedConst: missing doc comment on declaration group": true,
	}
	got := map[string]bool{}
	for _, f := range findings {
		got[f] = true
	}
	for f := range want {
		if !got[f] {
			t.Errorf("checker missed expected finding %q (got %v)", f, findings)
		}
	}
	for f := range got {
		if !want[f] {
			t.Errorf("unexpected finding %q", f)
		}
	}
}
