module eccparity

go 1.22
