// Package eccparity's top-level benchmark harness regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index):
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report their headline series as custom metrics (bin
// means, reductions, normalized ratios) and log the per-workload rows with
// -v. The simulation matrices are built once and shared across benchmarks.
package eccparity

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"eccparity/internal/core"
	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
	"eccparity/internal/sim"
	"eccparity/internal/sim/report"
)

// Shared evaluation matrices (reduced scale: 150K measured cycles).
var (
	evalOnce sync.Once
	evalQuad *sim.Evaluation
	evalDual *sim.Evaluation
)

func matrices() (*sim.Evaluation, *sim.Evaluation) {
	evalOnce.Do(func() {
		opts := []sim.Option{sim.WithCycles(150000), sim.WithWarmup(20000)}
		evalQuad = sim.NewEvaluation(sim.QuadEq, nil, nil, opts...)
		evalDual = sim.NewEvaluation(sim.DualEq, nil, nil, opts...)
	})
	return evalQuad, evalDual
}

// reportComparison publishes a figure's headline numbers as bench metrics.
func reportComparison(b *testing.B, c sim.Comparison, unit string) {
	b.Helper()
	for _, base := range c.Baselines {
		b.ReportMetric(c.Bin1Mean[base], "bin1_vs_"+base+"_"+unit)
		b.ReportMetric(c.Bin2Mean[base], "bin2_vs_"+base+"_"+unit)
	}
	for _, row := range c.Rows {
		b.Logf("%-15s %v", row.Workload, row.Value)
	}
}

func BenchmarkFig1CapacityBreakdown(b *testing.B) {
	var rows []sim.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = sim.Fig1CapacityBreakdown()
	}
	for _, r := range rows {
		b.Logf("%-38s det %.3f corr %.3f", r.Scheme, r.Detection, r.Correction)
	}
	b.ReportMetric(rows[0].Correction/(rows[0].Detection+rows[0].Correction), "corr_share_ck36")
}

func BenchmarkFig2MTBFAcrossChannels(b *testing.B) {
	var rows []sim.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = sim.Fig2ChannelFaultGaps()
	}
	for _, r := range rows {
		b.Logf("%.0f FIT → %.0f days", r.FITPerChip, r.MeanDays)
		if r.FITPerChip == 44 {
			b.ReportMetric(r.MeanDays, "days_at_44FIT")
		}
	}
}

func BenchmarkFig8EOLCorrectionFraction(b *testing.B) {
	var rows []sim.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = sim.Fig8EOLFractions(800, 1, 0)
	}
	for _, r := range rows {
		b.Logf("%d channels: mean %.4f p99.9 %.4f", r.Channels, r.Mean, r.P999)
		if r.Channels == 8 {
			b.ReportMetric(100*r.Mean, "pct_mean_8chan")
		}
	}
}

func BenchmarkFig9BandwidthCharacterization(b *testing.B) {
	var rows []sim.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = sim.Fig9Bandwidth(sim.WithCycles(100000), sim.WithWarmup(10000))
	}
	var bin2 float64
	for _, r := range rows {
		b.Logf("%-15s util %.3f (%.1f GB/s)", r.Workload, r.Utilization, r.GBs)
		if r.Bin2 {
			bin2 += r.Utilization / 8
		}
	}
	b.ReportMetric(bin2, "bin2_mean_util")
}

func BenchmarkFig10EPIQuad(b *testing.B) {
	q, _ := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = q.Fig10EPI()
	}
	reportComparison(b, cmp, "redpct")
	var raim sim.Comparison
	raim = q.FigRAIMEPI()
	b.ReportMetric(raim.Bin2Mean["raim"], "bin2_raim_redpct")
}

func BenchmarkFig11EPIDual(b *testing.B) {
	_, d := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = d.Fig10EPI()
	}
	reportComparison(b, cmp, "redpct")
}

func BenchmarkFig12DynamicEPI(b *testing.B) {
	q, _ := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = q.Fig12Dynamic()
	}
	reportComparison(b, cmp, "redpct")
}

func BenchmarkFig13BackgroundEPI(b *testing.B) {
	q, _ := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = q.Fig13Background()
	}
	reportComparison(b, cmp, "redpct")
}

func BenchmarkFig14PerfQuad(b *testing.B) {
	q, _ := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = q.Fig14Perf()
	}
	reportComparison(b, cmp, "x")
}

func BenchmarkFig15PerfDual(b *testing.B) {
	_, d := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = d.Fig14Perf()
	}
	reportComparison(b, cmp, "x")
}

func BenchmarkFig16AccessesQuad(b *testing.B) {
	q, _ := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = q.Fig16Accesses()
	}
	reportComparison(b, cmp, "x")
}

func BenchmarkFig17AccessesDual(b *testing.B) {
	_, d := matrices()
	var cmp sim.Comparison
	for i := 0; i < b.N; i++ {
		cmp = d.Fig16Accesses()
	}
	reportComparison(b, cmp, "x")
}

func BenchmarkFig18ScrubWindow(b *testing.B) {
	var rows []sim.Fig18Row
	for i := 0; i < b.N; i++ {
		rows = sim.Fig18ScrubWindows()
	}
	for _, r := range rows {
		if r.FITPerChip == 100 && r.WindowHours == 8 {
			b.ReportMetric(r.Probability*1e4, "prob_x1e4_8h_100FIT")
		}
	}
}

func BenchmarkTable3CapacityOverheads(b *testing.B) {
	var rows []sim.Table3Row
	for i := 0; i < b.N; i++ {
		rows = sim.Table3Capacity(400, 1, 0)
	}
	for _, r := range rows {
		b.Logf("%-40s %.3f EOL %.3f", r.Config, r.Overhead, r.EOL)
		if r.Config == "8 chan LOT-ECC5 + ECC Parity" {
			b.ReportMetric(100*r.Overhead, "pct_8chan_lot5_parity")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkParallelSpeedup measures the wall-clock scaling of the two
// fan-out substrates — a Monte Carlo EOL campaign and a (scheme × workload)
// simulation grid — across worker counts. Every sub-benchmark computes the
// same numbers (determinism is worker-count-invariant); only the wall clock
// changes. ns/op across the workers=… variants is the repo's perf
// trajectory record in EXPERIMENTS.md.
func BenchmarkParallelSpeedup(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	topo := faultmodel.PaperTopology(8)
	rates := faultmodel.DefaultRates()
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("montecarlo/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				faultmodel.SimulateEOL(topo, rates, 7*faultmodel.HoursPerYear, 2000, 1, w)
			}
		})
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("simgrid/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.NewEvaluation(sim.QuadEq,
					[]string{"chipkill18", "lotecc5+parity"},
					[]string{"mcf", "lbm", "milc", "omnetpp"},
					sim.WithCycles(60000), sim.WithWarmup(5000), sim.WithWorkers(w))
			}
		})
	}
}

// BenchmarkAblationCounterThreshold: pages retired before a bank fault
// saturates the pair counter, across thresholds.
func BenchmarkAblationCounterThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, th := range []uint8{1, 2, 4, 8} {
			s := core.NewSystem(core.Config{
				Base:             ecc.NewLOTECC5(),
				Channels:         4,
				BanksPerChannel:  4,
				RowsPerBank:      16,
				SlotsPerRow:      4,
				CounterThreshold: th,
			})
			for row := 0; row < 16; row++ {
				for slot := 0; slot < 4; slot++ {
					for ch := 0; ch < 4; ch++ {
						_ = s.Write(core.LineAddr{Channel: ch, Bank: 0, Row: row, Slot: slot},
							make([]byte, s.LineSize()))
					}
				}
			}
			s.InjectFault(core.InjectedFault{Channel: 0, Bank: 0, Row: -1, Shard: 0, Mask: 0x55})
			s.Scrub()
			if i == 0 {
				b.Logf("threshold %d: retired %d pages, marked pairs %d",
					th, s.Stats.PagesRetired, s.Health().MarkedPairs())
			}
		}
	}
}

// BenchmarkAblationXORCaching: traffic with and without the Fig. 7 LLC
// optimizations.
func BenchmarkAblationXORCaching(b *testing.B) {
	var on, off sim.Result
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig("lotecc5+parity", sim.QuadEq, "lbm")
		cfg.MeasureCycles = 150000
		cfg.WarmupAccesses = 20000
		on = sim.Run(cfg)
		cfg.DisableECCCaching = true
		off = sim.Run(cfg)
	}
	b.ReportMetric(on.AccessesPerInstr*1000, "acc_per_kinstr_cached")
	b.ReportMetric(off.AccessesPerInstr*1000, "acc_per_kinstr_uncached")
}

// BenchmarkAblationChannelCount: the capacity overhead as the parity group
// widens (the paper's N−1 scaling).
func BenchmarkAblationChannelCount(b *testing.B) {
	r := ecc.R(ecc.NewLOTECC5())
	var last float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{2, 4, 8, 16} {
			last = core.StaticOverhead(r, n)
			if i == 0 {
				b.Logf("N=%2d: %.4f", n, last)
			}
		}
	}
	b.ReportMetric(100*last, "pct_overhead_16chan")
}

// BenchmarkAblationSleepThreshold: background energy vs the rank
// power-down threshold (the close-page sleep policy the paper leans on).
func BenchmarkAblationSleepThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{1, 12, 120, 1e9} {
			cfg := sim.DefaultConfig("lotecc5+parity", sim.QuadEq, "omnetpp")
			cfg.MeasureCycles = 120000
			cfg.WarmupAccesses = 15000
			cfg.PowerDownThreshold = th
			r := sim.Run(cfg)
			if i == 0 {
				b.Logf("threshold %8.0f: background EPI %.0f pJ", th, r.BackgroundEPI)
			}
		}
	}
}

// BenchmarkAblationScrubTraffic: bandwidth cost of scrub intervals.
func BenchmarkAblationScrubTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, interval := range []float64{0, 1000, 100, 10} {
			cfg := sim.DefaultConfig("lotecc5+parity", sim.QuadEq, "gobmk")
			cfg.MeasureCycles = 120000
			cfg.WarmupAccesses = 15000
			cfg.ScrubLineInterval = interval
			r := sim.Run(cfg)
			if i == 0 {
				b.Logf("scrub interval %6.0f: %.4f acc/instr, EPI %.0f",
					interval, r.AccessesPerInstr, r.EPI)
			}
		}
	}
}

// BenchmarkSpeedBinTradeoff: §V-D — the 16% faster speed bin should cost
// only a few percent of EPI while buying back the bandwidth overhead.
func BenchmarkSpeedBinTradeoff(b *testing.B) {
	var base, fast sim.Result
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig("lotecc5+parity", sim.QuadEq, "lbm")
		cfg.MeasureCycles = 120000
		cfg.WarmupAccesses = 15000
		base = sim.Run(cfg)
		cfg.SpeedBinFactor = 1.16
		fast = sim.Run(cfg)
	}
	b.ReportMetric(fast.EPI/base.EPI, "epi_ratio_fast_bin")
}

// BenchmarkHPCStallEstimate: §VI-B.
func BenchmarkHPCStallEstimate(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = faultmodel.DefaultHPCConfig().StallFraction()
	}
	b.ReportMetric(100*frac, "stall_pct")
}

// BenchmarkUndetectedErrorEstimate: §VI-D.
func BenchmarkUndetectedErrorEstimate(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		years = faultmodel.UndetectedErrorYears(faultmodel.PaperTopology(8), faultmodel.DefaultRates(), 4)
	}
	b.ReportMetric(years/1000, "kyears_between_undetected")
}

// BenchmarkMixedRankAnalysis: the §VI-A capacity/energy trade-off.
func BenchmarkMixedRankAnalysis(b *testing.B) {
	var rows []sim.MixedRankResult
	for i := 0; i < b.N; i++ {
		rows = sim.MixedRankSweep()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.BlendedVsAllNarrow, "allwide_energy_ratio")
	b.ReportMetric(rows[3].BlendedVsAllNarrow, "hot90_energy_ratio")
	b.ReportMetric(rows[3].RelativeCapacity, "capacity_ratio")
}

// BenchmarkAblationRowPolicy: close-page (the paper's choice, enabling
// aggressive rank sleep) vs open-page (row-buffer hits, but ranks pinned
// active) on a sequential and a random workload.
func BenchmarkAblationRowPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, wl := range []string{"streamcluster", "mcf"} {
			for _, open := range []bool{false, true} {
				cfg := sim.DefaultConfig("lotecc5+parity", sim.QuadEq, wl)
				cfg.MeasureCycles = 120000
				cfg.WarmupAccesses = 15000
				cfg.OpenPage = open
				r := sim.Run(cfg)
				if i == 0 {
					b.Logf("%-14s openPage=%-5v EPI=%6.0f dyn=%6.0f bg=%6.0f rowHits=%d",
						wl, open, r.EPI, r.DynamicEPI, r.BackgroundEPI, r.Mem.RowHits)
				}
			}
		}
	}
}

// sweepThroughputPoints is the benchmark grid: every eccsim experiment at
// two Monte Carlo budgets — a 34-point convergence-check sweep (does Table
// III move between 30 and 60 trials?). Trials is part of each point's
// result identity but does not touch the (scheme × workload) simulation
// matrices, so the grid carries exactly the redundancy real cross-product
// sweeps do: the per-point baseline recomputes 16 matrices, the batch
// executor computes 2.
func sweepThroughputPoints() []report.SweepPoint {
	pts := []report.SweepPoint{}
	for _, trials := range []int{30, 60} {
		p := report.Params{Cycles: 30000, Warmup: 3000, Trials: trials, Seed: 1}
		for _, id := range report.EccsimIDs() {
			pts = append(pts, report.SweepPoint{Experiment: id, Params: p})
		}
	}
	return pts
}

// BenchmarkSweepThroughput is the tentpole number of the batch-executor
// work: aggregate throughput of a multi-point sweep, per-point jobs (one
// fresh Runner per point — the daemon's pre-batch behaviour) vs one
// report.RunBatch. Per-point results are byte-identical between the arms
// (TestRunBatchMatchesIndependentRuns pins that); only wall clock differs.
// The speedup is eval-matrix sharing, not parallelism, so it holds at any
// core count.
func BenchmarkSweepThroughput(b *testing.B) {
	points := sweepThroughputPoints()
	b.Run("per-point-jobs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pt := range points {
				if _, err := report.NewRunner(pt.Params, nil).RunContext(context.Background(), pt.Experiment); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(points))/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := report.RunBatch(context.Background(), points, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(points))/b.Elapsed().Seconds(), "points/s")
	})
}

// BenchmarkSingleRunHotPath times one sim.Run — the unit the hot-path
// optimization work targets (indexed core heap, positional-LRU cache sets,
// open-addressed inflight table, bus slot rings, tabulated GF multiplies).
// -benchmem makes allocation regressions in the access path visible; pair
// with -cpuprofile/-memprofile to see where a run's cycles go.
func BenchmarkSingleRunHotPath(b *testing.B) {
	cfg := sim.DefaultConfig("chipkill18", sim.QuadEq, "mcf")
	cfg.MeasureCycles = 150000
	cfg.WarmupAccesses = 20000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Run(cfg)
	}
}

// BenchmarkHarpProfile is the HARP-style profiling campaign added with the
// scheme layer: iterative at-risk-bit discovery with the on-die corrector
// active vs bypassed. The headline metrics are the final coverage split the
// harpprofile experiment serves and the campaign throughput.
func BenchmarkHarpProfile(b *testing.B) {
	cfg := faultmodel.HarpConfig{
		Words: 64, AtRiskPerWord: 3, ErrorProb: 0.25, Rounds: 16,
		Trials: 256, Seed: 1, Workers: runtime.NumCPU(),
	}
	var res faultmodel.HarpResult
	for i := 0; i < b.N; i++ {
		res = faultmodel.ProfileHarp(cfg)
	}
	final := res.Final()
	b.ReportMetric(100*final.RawCoverage, "raw_cov_pct")
	b.ReportMetric(100*final.ActiveCoverage, "active_cov_pct")
	b.ReportMetric(float64(cfg.Trials*b.N)/b.Elapsed().Seconds(), "trials_per_s")
}

// BenchmarkOnDieCompositeCorrect measures the cross-layer codec hot path:
// encode, on-die scrub, and rank-level correct of one 128B line under the
// ondie+chipkill composite.
func BenchmarkOnDieCompositeCorrect(b *testing.B) {
	s := ecc.ByName("ondie+chipkill")
	line := make([]byte, s.Geometry().LineSize)
	for i := range line {
		line[i] = byte(i * 37)
	}
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw, corr := s.Encode(line)
		cw.Shards[i%len(cw.Shards)][0] ^= 0x10
		if _, _, err := s.Correct(cw, corr); err != nil {
			b.Fatal(err)
		}
	}
}
